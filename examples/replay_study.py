#!/usr/bin/env python3
"""Replay-attack study across modifier schemes (paper §4.2, §6.2.1, §7).

Backward-edge CFI schemes differ exactly in *where a captured signed
return address can be replayed*.  This script mounts the replay
scenarios against kernels built with each scheme:

* same-function / same-SP — the residual window every (SP, function)
  modifier shares;
* cross-function / same-SP — defeats plain SP-only signing;
* cross-thread at 4 KiB and 64 KiB stack strides — defeats PARTS'
  16-bit SP slice at 64 KiB (its stacks-65536-bytes-apart weakness,
  paper §7), while Camouflage's 32 SP bits hold.
"""

from repro.attacks.replay import ReplayAttack, cross_thread_replay_accepted

SCHEMES = ("sp-only", "parts", "camouflage")


def main():
    print(__doc__)
    print(f"{'scenario':34s}" + "".join(f"{s:>12s}" for s in SCHEMES))
    print("-" * (34 + 12 * len(SCHEMES)))

    for variant in ("same-function", "cross-function"):
        cells = []
        for scheme in SCHEMES:
            result = ReplayAttack(variant=variant, scheme=scheme).run(
                "backward"
            )
            cells.append(result.outcome)
        print(f"{variant + ' (in-sim)':34s}" + "".join(
            f"{c:>12s}" for c in cells))

    for stride in (4096, 65536):
        cells = [
            "replayable" if cross_thread_replay_accepted(s, stride)
            else "rejected"
            for s in SCHEMES
        ]
        print(f"{f'cross-thread, stacks {stride}B apart':34s}" + "".join(
            f"{c:>12s}" for c in cells))

    print(
        "\nReading the table: Camouflage (this paper) rejects everything "
        "except the same-function/same-SP window it documents as "
        "residual; SP-only also falls to cross-function replay; PARTS "
        "additionally falls to cross-thread replay at 64 KiB strides."
    )


if __name__ == "__main__":
    main()
