#!/usr/bin/env python3
"""Authoring and loading a protected kernel module (paper §4.6, §5.3).

Builds a small "driver" LKM the way the Camouflage build system would:

* its callback functions are compiled with the kernel's protection
  profile (prologue/epilogue instrumentation);
* a statically initialized ``DECLARE_WORK`` item sits in ``.data`` with
  a row in the module's ``.pauth_ptrs`` table, because its callback
  pointer cannot be signed before the kernel keys exist;
* at load time the kernel statically verifies the text (no key reads,
  no SCTLR writes), seals the read-only sections, and signs the table
  entries in place.

Then the work item is executed (authenticating the now-signed pointer)
and finally attacked with the arbitrary-write primitive.
"""

from repro.arch import isa
from repro.arch.assembler import Assembler
from repro.attacks.base import ATTACK_SCRATCH, ArbitraryMemoryPrimitive
from repro.cfi.instrument import Compiler
from repro.cfi.keys import KeyRole
from repro.elfimage.image import DataSectionBuilder, ImageBuilder
from repro.kernel import System
from repro.kernel.fault import TaskKilled
from repro.kernel.workqueue import declare_work

MODULE_BASE = 0xFFFF_0000_0E00_0000


def build_driver_module(system):
    """An LKM with one instrumented callback and one DECLARE_WORK."""
    compiler = Compiler(system.profile)
    asm = Assembler(MODULE_BASE)

    def callback_body(a):
        a.mov_imm(9, ATTACK_SCRATCH)
        a.mov_imm(10, 0xCAFE)
        a.emit(isa.Str(10, 9, 0))

    compiler.function(asm, "mydrv_irq_handler", callback_body)
    text = asm.assemble()

    builder = ImageBuilder("mydrv", MODULE_BASE)
    builder.add_text(".text", text)
    data = DataSectionBuilder(".data")
    entry = declare_work(
        data,
        system.registry,
        "mydrv_work",
        text.symbols["mydrv_irq_handler"],
        key=system.profile.key_for(KeyRole.FORWARD),
    )
    builder.add_data(".data", data, writable=True)
    builder.add_signed_pointer(entry)
    return builder.build()


def main():
    print(__doc__)
    system = System(profile="full")
    module_image = build_driver_module(system)
    module = system.modules.load(module_image)
    print(f"loaded module {module.name!r}; "
          f"{len(module.signed_pointers)} pointer(s) signed at load:")
    for entry, signed in module.signed_pointers:
        print(f"  {entry.section}+{entry.offset:#x} "
              f"key={entry.key} constant={entry.constant:#06x} "
              f"-> {signed:#018x}")

    work = module.symbol("mydrv_work")
    system.mmu.write_u64(ATTACK_SCRATCH, 0, 1)
    system.kernel_call("run_work", args=(work,))
    marker = system.mmu.read_u64(ATTACK_SCRATCH, 1)
    print(f"\nran the statically declared work item: marker={marker:#x} "
          f"(expected 0xcafe)")

    print("\nattacker overwrites the callback with a raw pointer...")
    primitive = ArbitraryMemoryPrimitive(system)
    primitive.write_u64(work, system.kernel_symbol("sockfs_write"))
    try:
        system.kernel_call("run_work", args=(work,))
        print("!!! corrupted callback executed")
    except TaskKilled as killed:
        print(f"DETECTED: {killed}")


if __name__ == "__main__":
    main()
