#!/usr/bin/env python3
"""Performance tour: regenerate the paper's evaluation figures quickly.

Runs scaled-down versions of every performance experiment (Figures 2-4
and the key-switch micro-benchmark of §6.1.1) and prints the tables.
The full-size runs live in ``benchmarks/``; this script is the
human-paced version.
"""

from repro.bench import run_fig2, run_fig3, run_fig4, run_key_switch


def main():
    print(__doc__)
    for record in (
        run_fig2(iterations=100),
        run_fig3(iterations=10),
        run_fig4(iterations=5),
        run_key_switch(iterations=10),
    ):
        print(record.summary())
        for table in record.tables:
            table.print()


if __name__ == "__main__":
    main()
