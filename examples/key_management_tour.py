#!/usr/bin/env python3
"""Tour of the Camouflage key-management architecture (paper §4.1, §5.1).

Walks the whole key life cycle on a booted system and pokes at every
place the keys could leak:

1. the bootloader draws keys from the firmware PRNG and bakes them into
   the MOVZ/MOVK immediates of the key-setter function;
2. the hypervisor maps the setter page execute-only (stage 2), so both
   reading and writing it fail even for kernel-mode code;
3. the setter scrubs its GPRs, so nothing lingers after it runs;
4. a malicious module trying ``MRS`` on the key registers is rejected
   by the load-time static scan;
5. writes to the locked MMU registers (including SCTLR's PAuth enable
   bits) trap to the hypervisor;
6. user space keys are per-process: a fresh bank per exec, restored on
   every kernel exit.
"""

from repro.arch import isa
from repro.arch.assembler import Assembler
from repro.attacks.base import ArbitraryMemoryPrimitive
from repro.boot.bootloader import KEY_SETTER_SYMBOL
from repro.elfimage.image import ImageBuilder
from repro.errors import HypervisorTrap, PermissionFault
from repro.kernel import System
from repro.kernel.module import ModuleRejected


def main():
    print(__doc__)
    system = System(profile="full", seed=0x5EED)
    keys = system.kernel_keys

    print("1) boot-generated kernel keys (host-side ground truth):")
    for name in ("ia", "ib", "db"):
        key = keys.get(name)
        print(f"   {name}: lo={key.lo:#018x} hi={key.hi:#018x}")

    print(f"\n2) key setter at {system.key_setter_address:#x} (XOM):")
    primitive = ArbitraryMemoryPrimitive(system)
    try:
        primitive.read_u64(system.key_setter_address)
        print("   !!! setter page was readable")
    except PermissionFault as fault:
        print(f"   read denied: {fault}")
    try:
        system.mmu.write_u64(system.key_setter_address, 0, 1)
        print("   !!! setter page was writable")
    except PermissionFault as fault:
        print(f"   write denied: {fault}")

    print("\n3) running the setter (kernel entry does this each time):")
    system.cpu.regs.write(0, 0x1234)  # pre-existing GPR contents
    system.cpu.regs.interrupts_masked = True
    system.cpu.call(
        system.key_setter_address,
        stack_top=system.tasks.current.stack_top,
    )
    live = system.cpu.regs.keys
    print(f"   IB key installed in registers: "
          f"{live.ib.lo == keys.ib.lo and live.ib.hi == keys.ib.hi}")
    print(f"   x0 after setter (scrubbed): {system.cpu.regs.read(0):#x}")

    print("\n4) malicious module reading key registers:")
    base = 0xFFFF_0000_0D00_0000
    asm = Assembler(base)
    asm.fn("spy_init")
    asm.emit(isa.Mrs(0, "APIBKeyLo_EL1"), isa.Ret())
    builder = ImageBuilder("spy", base)
    builder.add_text(".text", asm.assemble())
    try:
        system.modules.load(builder.build())
        print("   !!! module accepted")
    except ModuleRejected as rejected:
        print(f"   {rejected}")

    print("\n5) run-time SCTLR tampering after lockdown:")
    try:
        system.cpu.write_sysreg_checked("SCTLR_EL1", 0)
        print("   !!! SCTLR write went through")
    except HypervisorTrap as trap:
        print(f"   trapped to EL2: {trap}")

    print("\n6) per-process user keys:")
    a = system.spawn_process("proc-a")
    b = system.spawn_process("proc-b")
    print(f"   proc-a IA lo: {a.user_keys.ia.lo:#018x}")
    print(f"   proc-b IA lo: {b.user_keys.ia.lo:#018x}")
    print(f"   distinct: {a.user_keys.ia.lo != b.user_keys.ia.lo}")
    print(f"\n   (the setter symbol is {KEY_SETTER_SYMBOL!r}; its body "
          f"never appears in any readable mapping)")


if __name__ == "__main__":
    main()
