#!/usr/bin/env python3
"""The §5.3 deployability pipeline, end to end.

Replays the paper's engineering story on the simulated stack:

1. **survey** — the Coccinelle-like semantic search over a Linux-5.2-
   calibrated corpus finds 1285 run-time-assigned function-pointer
   members in 504 compound types (229 of which should become const ops
   structures; 275 lone pointers get PAuth protection);
2. **semantic patch** — every access site of a protected member is
   rewritten to get/set form;
3. **codegen** — the get/set accessors are generated for a batch of
   lone-pointer types and linked into a kernel module;
4. **load** — the module passes load-time static verification and its
   read-only sections are sealed;
5. **exercise** — for each generated type, a pointer round-trips
   through the accessors, and an injected raw pointer is caught.
"""

from repro.analysis import (
    SemanticPatch,
    generate_linux_like_corpus,
    survey_function_pointers,
)
from repro.analysis.codegen import generate_protected_module
from repro.kernel import System


def main():
    print(__doc__)
    corpus = generate_linux_like_corpus()
    report = survey_function_pointers(corpus)
    print(f"1. survey: {report.summary()}\n")

    patch = SemanticPatch()
    result = patch.apply(corpus)
    patch.verify_complete(corpus, result)
    print(f"2. semantic patch: {result.summary()}\n")

    system = System(profile="full")
    generated = generate_protected_module(system, corpus, max_types=16)
    print(
        f"3. codegen: {generated.accessor_count} accessors for "
        f"{len(generated.ktypes)} lone-pointer types\n"
    )

    module = system.modules.load(generated.image)
    print(f"4. load: module {module.name!r} verified and sealed\n")

    target = system.kernel_symbol("ext4_read")
    checked = caught = 0
    for (type_name, member), (getter, setter) in sorted(
        generated.accessor_map.items()
    ):
        obj = system.heap.allocate(generated.ktypes[type_name])
        system.kernel_call(module.symbol(setter), args=(obj.address, target))
        value, _ = system.kernel_call(module.symbol(getter), args=(obj.address,))
        assert value == target, (type_name, member)
        checked += 1
        # Injection: a raw pointer written behind the accessor's back.
        # The getter's AUTIA poisons it, so the value that reaches any
        # consumer is non-canonical and faults on use.
        obj.raw_write(member, system.kernel_symbol("ext4_write"))
        poisoned, _ = system.kernel_call(
            module.symbol(getter), args=(obj.address,)
        )
        if not system.config.is_canonical(poisoned):
            caught += 1
    print(
        f"5. exercise: {checked} accessor round-trips OK; "
        f"{caught}/{checked} raw-pointer injections poisoned on load"
    )


if __name__ == "__main__":
    main()
