#!/usr/bin/env python3
"""Quickstart: boot a Camouflage-protected kernel and stop an exploit.

Boots two simulated systems — one unprotected, one with the full
Camouflage design (backward-edge CFI + forward-edge CFI + DFI) — then
mounts the same ops-table-swap exploit against both:

1. open a file whose ``f_ops`` points at the ext4 operations table;
2. use the attacker's arbitrary-write primitive to repoint ``f_ops``
   at a fake table whose ``read`` slot is attacker code;
3. invoke ``read()`` from user space.

On the unprotected kernel the dispatch lands in the attacker function;
on the protected kernel the signed ``f_ops`` pointer fails AUTDB inside
``vfs_read`` and the poisoned pointer faults — the process is killed
and the failure counted toward the panic threshold.
"""

from repro.arch import isa
from repro.arch.assembler import Assembler
from repro.attacks.base import ATTACK_SCRATCH, ArbitraryMemoryPrimitive
from repro.kernel import System, layout, open_file
from repro.kernel.fault import TaskKilled
from repro.kernel.vfs import FILE_F_OPS_OFFSET


def build_attacker_text(asm, ctx):
    """Kernel text the exploit will redirect into."""

    def body(a):
        a.mov_imm(9, ATTACK_SCRATCH)
        a.mov_imm(10, 0xF00D)
        a.emit(isa.Str(10, 9, 0), isa.Movz(0, 0, 0))

    ctx.compiler.function(asm, "__evil_read", body, leaf=True)


def exploit(profile_name):
    print(f"--- kernel profile: {profile_name} ---")
    system = System(profile=profile_name, text_builders=[build_attacker_text])
    victim = open_file(system, "ext4_fops")
    system.install_fd(3, victim)

    # The arbitrary kernel read/write primitive of the threat model.
    primitive = ArbitraryMemoryPrimitive(system)
    fake_table = system.heap.allocate_raw(32)
    primitive.write_u64(fake_table, system.kernel_symbol("__evil_read"))
    primitive.write_u64(victim.address + FILE_F_OPS_OFFSET, fake_table)
    print(f"  f_ops repointed at fake table {fake_table:#x}")

    # A user program invoking read(fd=3).
    user = Assembler(layout.USER_TEXT_BASE)
    user.fn("main")
    user.mov_imm(0, 3)
    user.mov_imm(8, system.syscall_numbers["read"])
    user.emit(isa.Svc(0), isa.Hlt())
    program = user.assemble()
    system.load_user_program(program)
    system.map_user_stack()
    system.mmu.write_u64(ATTACK_SCRATCH, 0, 1)

    try:
        cycles = system.run_user(system.tasks.current, program.address_of("main"))
    except TaskKilled as killed:
        print(f"  DETECTED: {killed}")
        print(f"  PAuth failures so far: {system.faults.pauth_failures} "
              f"(panic at {system.faults.threshold})")
        return
    if system.mmu.read_u64(ATTACK_SCRATCH, 1) == 0xF00D:
        print(f"  EXPLOITED: attacker code ran in kernel mode "
              f"({cycles} cycles)")
    else:
        print("  attack fizzled")


def main():
    print(__doc__)
    exploit("none")
    print()
    exploit("full")


if __name__ == "__main__":
    main()
