#!/usr/bin/env python3
"""The integrity-protected syscall ABI (paper §8 future work).

Demonstrates the paper's final future-work item on the banked-keys ISA
extension this reproduction models: user space signs a buffer pointer
with its own DA key; the kernel flips the key-select flag, verifies the
pointer under the *caller's* key, and only then dereferences it.

Run of play:

1. the honest process signs its buffer pointer — the kernel reads the
   buffer and returns its first word;
2. the attacker passes a raw (unsigned) pointer aimed at kernel-chosen
   memory — authentication fails inside the kernel and the process is
   killed instead of turning the kernel into a confused deputy.
"""

from repro.arch import isa
from repro.arch.assembler import Assembler
from repro.cfi.hardened_abi import (
    SECURE_WRITE_SYSCALL,
    build_secure_syscall,
    emit_user_sign,
)
from repro.kernel import System, layout
from repro.kernel.fault import TaskKilled
from repro.kernel.syscalls import SyscallSpec


def run(sign_pointer):
    system = System(
        profile="full",
        key_management="banked-isa",
        syscalls=[SyscallSpec(SECURE_WRITE_SYSCALL, build_secure_syscall)],
    )
    system.map_user_stack()
    buffer = system.map_user_data()
    system.mmu.write_u64(buffer, 0xFEED_FACE, 1)

    user = Assembler(layout.USER_TEXT_BASE)
    user.fn("main")
    user.mov_imm(0, buffer)
    if sign_pointer:
        emit_user_sign(user, 0)
    user.mov_imm(8, system.syscall_numbers[SECURE_WRITE_SYSCALL])
    user.emit(isa.Svc(0), isa.Hlt())
    program = user.assemble()
    system.load_user_program(program)

    label = "signed pointer" if sign_pointer else "raw pointer (attack)"
    try:
        system.run_user(system.tasks.current, program.address_of("main"))
        print(f"  {label}: kernel returned {system.cpu.regs.read(0):#x}")
    except TaskKilled as killed:
        print(f"  {label}: DETECTED — {killed}")


def main():
    print(__doc__)
    run(sign_pointer=True)
    run(sign_pointer=False)


if __name__ == "__main__":
    main()
